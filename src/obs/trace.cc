#include "obs/trace.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/env.hh"
#include "common/log.hh"

namespace amnt::obs
{

namespace
{

constexpr const char *kClassNames[kEventClassCount] = {
    "op",           "persist",     "mcache_hit",   "mcache_miss",
    "mcache_evict", "bmt_walk",    "subtree_move", "root_adapt",
    "crypto_batch", "crash",       "recovery",
};

const char *
phaseString(EventPhase ph)
{
    switch (ph) {
      case EventPhase::Instant: return "i";
      case EventPhase::Begin: return "B";
      case EventPhase::End: return "E";
      case EventPhase::Complete: return "X";
    }
    return "i";
}

void
appendEvent(std::string &out, const TraceEvent &e, unsigned tid)
{
    char buf[256];
    const char *name = eventClassName(e.cls);
    int n = std::snprintf(
        buf, sizeof(buf),
        "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%s\", "
        "\"ts\": %llu, \"pid\": 0, \"tid\": %u",
        name, name, phaseString(e.ph),
        static_cast<unsigned long long>(e.ts), tid);
    out.append(buf, static_cast<std::size_t>(n));
    if (e.ph == EventPhase::Complete) {
        n = std::snprintf(buf, sizeof(buf), ", \"dur\": %llu",
                          static_cast<unsigned long long>(e.dur));
        out.append(buf, static_cast<std::size_t>(n));
    }
    if (e.ph == EventPhase::Instant)
        out += ", \"s\": \"t\"";
    if (e.ph != EventPhase::End) {
        n = std::snprintf(buf, sizeof(buf),
                          ", \"args\": {\"a0\": %llu, \"a1\": %llu}",
                          static_cast<unsigned long long>(e.a0),
                          static_cast<unsigned long long>(e.a1));
        out.append(buf, static_cast<std::size_t>(n));
    }
    out += "}";
}

} // namespace

const char *
eventClassName(EventClass c)
{
    const auto i = static_cast<std::size_t>(c);
    return i < kEventClassCount ? kClassNames[i] : "?";
}

TraceBuffer::TraceBuffer(std::size_t cap, unsigned engineId)
    : cap_(cap == 0 ? 1 : cap), engineId_(engineId)
{
}

// ------------------------------------------------------------- TraceSession

struct TraceSession::Impl
{
    mutable std::mutex mu;
    bool enabled = false;
    std::string path;
    std::size_t cap = 65536;
    unsigned nextId = 0;
    std::vector<std::shared_ptr<TraceBuffer>> buffers;
};

TraceSession::TraceSession() : impl_(std::make_unique<Impl>())
{
    readEnv();
}

void
TraceSession::readEnv()
{
    const char *path = std::getenv("AMNT_TRACE");
    impl_->enabled = path != nullptr && path[0] != '\0';
    impl_->path = impl_->enabled ? path : "";
    impl_->cap = static_cast<std::size_t>(envU64("AMNT_TRACE_CAP", 65536));
    if (impl_->cap == 0)
        impl_->cap = 1;
}

TraceSession &
TraceSession::global()
{
    static TraceSession session;
    static const int registered = [] {
        std::atexit([] {
            TraceSession &s = global();
            if (s.enabled())
                s.exportNow();
        });
        return 0;
    }();
    (void)registered;
    return session;
}

bool
TraceSession::enabled() const
{
    return impl_->enabled;
}

std::size_t
TraceSession::cap() const
{
    return impl_->cap;
}

const std::string &
TraceSession::path() const
{
    return impl_->path;
}

std::shared_ptr<TraceBuffer>
TraceSession::openBuffer()
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (!impl_->enabled)
        return nullptr;
    auto buf = std::make_shared<TraceBuffer>(impl_->cap, impl_->nextId++);
    impl_->buffers.push_back(buf);
    return buf;
}

std::string
TraceSession::exportJson() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    std::string out = "{\"traceEvents\": [\n";
    bool first = true;
    std::uint64_t dropped = 0;
    for (const auto &buf : impl_->buffers) {
        dropped += buf->overwritten();
        // Repair the span structure this buffer lost to ring
        // overwrite: orphaned End events (their Begin was evicted)
        // are dropped, and Begins still open at the end of the
        // buffer get a synthetic End at the last timestamp.
        std::vector<EventClass> open;
        std::uint64_t last_ts = 0;
        buf->forEach([&](const TraceEvent &e) {
            last_ts = e.ts;
            if (e.ph == EventPhase::End) {
                if (open.empty())
                    return; // orphan from overwrite
                open.pop_back();
            } else if (e.ph == EventPhase::Begin) {
                open.push_back(e.cls);
            }
            out += first ? "  " : ",\n  ";
            first = false;
            appendEvent(out, e, buf->engineId());
        });
        while (!open.empty()) {
            TraceEvent close;
            close.ts = last_ts;
            close.cls = open.back();
            close.ph = EventPhase::End;
            open.pop_back();
            out += first ? "  " : ",\n  ";
            first = false;
            appendEvent(out, close, buf->engineId());
        }
    }
    out += "\n], \"displayTimeUnit\": \"ns\", \"otherData\": "
           "{\"tick_domain\": \"engine cycles\", \"dropped_events\": " +
           std::to_string(dropped) + "}}\n";
    return out;
}

void
TraceSession::exportNow() const
{
    const std::string text = exportJson();
    std::FILE *f = std::fopen(impl_->path.c_str(), "w");
    if (f == nullptr)
        fatal("AMNT_TRACE: cannot write %s", impl_->path.c_str());
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
}

void
TraceSession::reconfigure()
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->buffers.clear();
    impl_->nextId = 0;
    readEnv();
}

// ------------------------------------------------------------------ Tracer

Tracer::Tracer()
{
    buf_ = TraceSession::global().openBuffer();
    on_ = buf_ != nullptr;
}

bool
hostTimingEnabled()
{
    static const bool on = envU64("AMNT_OBS_TIMING", 0) != 0;
    return on;
}

} // namespace amnt::obs
