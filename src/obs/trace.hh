/**
 * @file
 * Structured event tracing for the MEE/sim pipeline.
 *
 * Every secure-memory engine owns a Tracer: a lock-free, single-writer
 * ring buffer of typed events (persist ops, BMT walks, metadata-cache
 * hits/misses/evictions, subtree movements, crash/recovery phases,
 * crypto batch flushes), each stamped with the engine's simulated tick
 * and engine id. Buffers register with the process-wide TraceSession,
 * which merges them into one Chrome trace_event JSON document
 * (chrome://tracing / Perfetto compatible) at exit or on demand.
 *
 * Tick domain: each engine carries its own monotonic cycle clock,
 * advanced by the critical-path latency of every read()/write() it
 * services. All events emitted while servicing one operation share the
 * operation's start tick, so `ts` is nondecreasing per engine track by
 * construction (DESIGN.md §11).
 *
 * Zero-cost rule: tracing is enabled by setting AMNT_TRACE=<file>
 * (AMNT_TRACE_CAP bounds events per engine, default 65536). When the
 * variable is unset every hook reduces to one branch on a cached bool
 * (`Tracer::on()`); no event is constructed, no clock is advanced, and
 * all simulated numbers — including the golden-pinned figures — are
 * byte-identical with tracing on or off (tracing only ever records).
 *
 * Ring semantics: when a buffer exceeds its cap the oldest events are
 * overwritten (keep-latest) and counted; export repairs the B/E
 * structure by dropping orphaned ends and synthesizing ends for
 * still-open begins, so exported traces always validate.
 */

#ifndef AMNT_OBS_TRACE_HH
#define AMNT_OBS_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace amnt::obs
{

/** The event taxonomy (DESIGN.md §11). Order matches names below. */
enum class EventClass : std::uint8_t
{
    Op,          ///< one data read/write through the engine (complete)
    Persist,     ///< a metadata block persisted to NVM (a1=1: shadow)
    McacheHit,   ///< metadata cache hit
    McacheMiss,  ///< metadata cache miss (fetch + verify)
    McacheEvict, ///< metadata line displaced (a1 = dirty)
    BmtWalk,     ///< counter trust-chain walk that fetched blocks
    SubtreeMove, ///< AMNT fast-subtree retarget (begin/end span)
    RootAdapt,   ///< BMF root-set prune (a0=0) / merge (a0=1)
    CryptoBatch, ///< one batched MAC/pad burst (a0 = batch size)
    Crash,       ///< power failure (instant)
    Recovery,    ///< recovery procedure (begin/end span)
};

/** Number of event classes (bounds for tables and tests). */
constexpr std::size_t kEventClassCount = 11;

/** Stable lower-case name of an event class ("mcache_hit", ...). */
const char *eventClassName(EventClass c);

/** Chrome trace_event phase of one record. */
enum class EventPhase : std::uint8_t
{
    Instant,  ///< ph "i"
    Begin,    ///< ph "B"
    End,      ///< ph "E"
    Complete, ///< ph "X" (carries dur)
};

/** One trace record (fixed size; lives in the ring buffer). */
struct TraceEvent
{
    std::uint64_t ts = 0;  ///< simulated tick (engine cycle clock)
    std::uint64_t a0 = 0;  ///< first argument (usually an address)
    std::uint64_t a1 = 0;  ///< second argument
    std::uint64_t dur = 0; ///< Complete events only
    EventClass cls = EventClass::Op;
    EventPhase ph = EventPhase::Instant;
};

/**
 * Fixed-capacity single-writer ring buffer. Not thread-safe by
 * design: exactly one engine writes it, and the session only reads
 * after the owning simulation finished (lock-free by construction).
 */
class TraceBuffer
{
  public:
    TraceBuffer(std::size_t cap, unsigned engineId);

    /** Append; overwrites the oldest record when full. */
    void
    push(const TraceEvent &e)
    {
        if (events_.size() < cap_) {
            events_.push_back(e);
        } else {
            events_[head_] = e;
            head_ = head_ + 1 == cap_ ? 0 : head_ + 1;
            ++overwritten_;
        }
    }

    /** Engine id (Chrome "tid" of this track). */
    unsigned engineId() const { return engineId_; }

    /** Events currently held (<= cap). */
    std::size_t size() const { return events_.size(); }

    /** Events lost to ring overwrite. */
    std::uint64_t overwritten() const { return overwritten_; }

    /** Visit events in chronological order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < events_.size(); ++i)
            fn(events_[(head_ + i) % events_.size()]);
    }

  private:
    std::size_t cap_;
    unsigned engineId_;
    std::size_t head_ = 0; ///< oldest record once the ring wrapped
    std::uint64_t overwritten_ = 0;
    std::vector<TraceEvent> events_;
};

/**
 * Process-wide trace collection point. Configured once from the
 * environment (AMNT_TRACE, AMNT_TRACE_CAP); engines open buffers
 * here, and the merged Chrome JSON is written at process exit (or
 * explicitly via exportNow()).
 */
class TraceSession
{
  public:
    /** The process session (reads the environment on first use). */
    static TraceSession &global();

    /** True when AMNT_TRACE is set. */
    bool enabled() const;

    /** Per-engine event cap (AMNT_TRACE_CAP). */
    std::size_t cap() const;

    /** Output path (empty when disabled). */
    const std::string &path() const;

    /**
     * Register a new per-engine buffer and assign it the next engine
     * id. Returns nullptr when the session is disabled. Thread-safe
     * (sweep jobs construct engines concurrently); the buffer itself
     * is then written lock-free by its single owner.
     */
    std::shared_ptr<TraceBuffer> openBuffer();

    /** Merged Chrome trace_event JSON of all buffers opened so far. */
    std::string exportJson() const;

    /** Write exportJson() to path() now (fatal on I/O failure). */
    void exportNow() const;

    /**
     * Test hook: re-read the environment and drop all buffers.
     * Engines constructed before a reconfigure keep tracing into
     * their (now unreachable) old buffers; tests reconfigure before
     * building the engines under test.
     */
    void reconfigure();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

  private:
    TraceSession();

    void readEnv();

    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Per-engine tracing facade. Construction attaches to the global
 * session; when tracing is disabled `on()` is false and every hook
 * is one predictable branch.
 */
class Tracer
{
  public:
    Tracer();

    /** Cached enable flag — the hot-path guard. */
    bool on() const { return on_; }

    /** Current simulated tick of this engine's track. */
    std::uint64_t now() const { return now_; }

    /** Advance the tick (end of a serviced operation). */
    void advance(std::uint64_t cycles) { now_ += cycles; }

    // The emit hooks guard on on_ themselves; hot paths additionally
    // guard at the call site to skip argument computation entirely.
    void
    instant(EventClass c, std::uint64_t a0 = 0, std::uint64_t a1 = 0)
    {
        if (on_)
            buf_->push({now_, a0, a1, 0, c, EventPhase::Instant});
    }

    void
    begin(EventClass c, std::uint64_t a0 = 0)
    {
        if (on_)
            buf_->push({now_, a0, 0, 0, c, EventPhase::Begin});
    }

    void
    end(EventClass c)
    {
        if (on_)
            buf_->push({now_, 0, 0, 0, c, EventPhase::End});
    }

    void
    complete(EventClass c, std::uint64_t dur, std::uint64_t a0 = 0,
             std::uint64_t a1 = 0)
    {
        if (on_)
            buf_->push({now_, a0, a1, dur, c, EventPhase::Complete});
    }

  private:
    bool on_ = false;
    std::uint64_t now_ = 0;
    std::shared_ptr<TraceBuffer> buf_;
};

/**
 * Cached AMNT_OBS_TIMING flag: opt-in host-side wall-clock capture
 * (crypto batch times). Kept separate from tracing because host times
 * are inherently nondeterministic; everything else the observability
 * layer records is deterministic at any sweep thread count.
 */
bool hostTimingEnabled();

} // namespace amnt::obs

#endif // AMNT_OBS_TRACE_HH
