/**
 * @file
 * Hierarchical stats registry: federates the per-component StatGroup,
 * Histogram, and scalar-probe instances under stable dotted paths and
 * dumps one flat JSON document per run.
 *
 * Path scheme (DESIGN.md §11): `<component>.<subpath>.<counter>`,
 * e.g. `mee.amnt.l3.subtree_movements`, `cache.l1d.0.hits`,
 * `nvm.writes`. Registration stores non-owning pointers (the
 * components keep owning their stats, exactly as before); a duplicate
 * path panics immediately, and a collision between a registered path
 * and an expanded `group.counter` key panics at dump time.
 *
 * Everything the registry snapshots is simulated state, so dumps are
 * bit-identical at any AMNT_SWEEP_THREADS. Host wall-clock metrics
 * live under the reserved `host.` prefix and stay at count 0 unless
 * AMNT_OBS_TIMING=1 opts in.
 */

#ifndef AMNT_OBS_REGISTRY_HH
#define AMNT_OBS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/stats.hh"

namespace amnt::obs
{

/**
 * Canonical JSON object for one histogram summary — the format
 * registry dumps embed per histogram and the campaign artifacts
 * reuse: {"count": N, "mean": x, "p50": x, "p95": x, "p99": x,
 * "underflow": N, "overflow": N}, doubles as %.9g.
 */
std::string summaryJson(const HistogramSummary &s);

/**
 * Non-owning federation of stats under dotted paths. Components
 * register once at construction; snapshots read the live objects.
 */
class StatRegistry
{
  public:
    /**
     * Register @p group under @p path; its counters expand to
     * `path.<counter>` keys in the dump. Panics on a duplicate path.
     */
    void addGroup(const std::string &path, StatGroup *group);

    /** Register @p hist under @p path (dumped as a summary object). */
    void addHistogram(const std::string &path, Histogram *hist);

    /**
     * Register a read-only scalar probe (e.g. a device counter
     * accessor). Evaluated at every dump.
     */
    void addScalar(const std::string &path,
                   std::function<std::uint64_t()> probe);

    /** True when nothing has been registered. */
    bool empty() const;

    /**
     * One flat JSON object, keys in sorted order:
     *   "cache.l1d.0.hits": 123,
     *   "mee.persist_chain_depth": {"count": ..., "p50": ..., ...},
     *   "nvm.writes": 456
     * Stable across runs and sweep thread counts; panics when two
     * registrations expand to the same key.
     */
    std::string dumpJson() const;

    /**
     * Reset every registered StatGroup and Histogram in place
     * (matching StatGroup::reset: names and registrations survive).
     * Scalar probes are views onto component counters and are not
     * touched.
     */
    void reset();

  private:
    void claim(const std::string &path, const char *kind);

    std::map<std::string, StatGroup *> groups_;
    std::map<std::string, Histogram *> hists_;
    std::map<std::string, std::function<std::uint64_t()>> scalars_;
    std::map<std::string, const char *> claimed_;
};

} // namespace amnt::obs

#endif // AMNT_OBS_REGISTRY_HH
