#include "obs/registry.hh"

#include <cstdio>

#include "common/log.hh"

namespace amnt::obs
{

namespace
{

std::string
formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

} // namespace

std::string
summaryJson(const HistogramSummary &s)
{
    // Key set is part of the dump format (diffed by the record/replay
    // CI leg): count, mean, p50, p95, p99, underflow, overflow.
    std::string out = "{\"count\": " + std::to_string(s.count);
    out += ", \"mean\": " + formatDouble(s.mean);
    out += ", \"p50\": " + formatDouble(s.p50);
    out += ", \"p95\": " + formatDouble(s.p95);
    out += ", \"p99\": " + formatDouble(s.p99);
    out += ", \"underflow\": " + std::to_string(s.underflow);
    out += ", \"overflow\": " + std::to_string(s.overflow);
    out += "}";
    return out;
}

void
StatRegistry::claim(const std::string &path, const char *kind)
{
    if (path.empty())
        panic("StatRegistry: empty path");
    auto [it, inserted] = claimed_.emplace(path, kind);
    if (!inserted) {
        panic("StatRegistry: duplicate path '%s' (%s already registered)",
              path.c_str(), it->second);
    }
}

void
StatRegistry::addGroup(const std::string &path, StatGroup *group)
{
    claim(path, "group");
    groups_[path] = group;
}

void
StatRegistry::addHistogram(const std::string &path, Histogram *hist)
{
    claim(path, "histogram");
    hists_[path] = hist;
}

void
StatRegistry::addScalar(const std::string &path,
                        std::function<std::uint64_t()> probe)
{
    claim(path, "scalar");
    scalars_[path] = std::move(probe);
}

bool
StatRegistry::empty() const
{
    return claimed_.empty();
}

std::string
StatRegistry::dumpJson() const
{
    // Expand every registration into its final key first; std::map
    // gives the stable sorted order and detects expanded-key
    // collisions (a scalar "mee.x" vs a group "mee" with counter "x").
    std::map<std::string, std::string> flat;
    auto emit = [&](const std::string &key, std::string value) {
        auto [it, inserted] = flat.emplace(key, std::move(value));
        if (!inserted)
            panic("StatRegistry: key collision on '%s'", key.c_str());
    };

    for (const auto &[path, group] : groups_) {
        for (const auto &[name, value] : group->all())
            emit(path + "." + name, std::to_string(value));
    }
    for (const auto &[path, hist] : hists_)
        emit(path, summaryJson(hist->snapshot()));
    for (const auto &[path, probe] : scalars_)
        emit(path, std::to_string(probe()));

    std::string out = "{";
    bool first = true;
    for (const auto &[key, value] : flat) {
        out += first ? "\n  \"" : ",\n  \"";
        first = false;
        out += key;
        out += "\": ";
        out += value;
    }
    out += first ? "}" : "\n}";
    return out;
}

void
StatRegistry::reset()
{
    for (auto &[path, group] : groups_)
        group->reset();
    for (auto &[path, hist] : hists_)
        hist->reset();
}

} // namespace amnt::obs
