#include "shard/sharded_engine.hh"

#include <algorithm>
#include <cstring>

#include "common/bitops.hh"
#include "common/env.hh"
#include "common/log.hh"
#include "core/amnt.hh"
#include "obs/registry.hh"

namespace amnt::shard
{

namespace
{

bool
blockZero(const mem::Block &b)
{
    for (std::uint8_t byte : b)
        if (byte != 0)
            return false;
    return true;
}

} // namespace

ShardOptions
resolveOptions(ShardOptions opts)
{
    if (opts.slices == 0)
        opts.slices =
            static_cast<unsigned>(envU64("AMNT_SHARD_SLICES", 4));
    if (opts.slices == 0)
        opts.slices = 1;
    if (opts.epochWrites == 0)
        opts.epochWrites = envU64("AMNT_SHARD_EPOCH", 1024);
    if (opts.epochWrites == 0)
        opts.epochWrites = 1;
    if (opts.lanes == 0)
        opts.lanes = 1;
    if (opts.cores == 0)
        opts.cores = 1;
    return opts;
}

// ----------------------------------------------------------------
// EngineShard

EngineShard::EngineShard(unsigned index, mee::Protocol protocol,
                         const mee::MeeConfig &slice_config,
                         unsigned cores)
    : index_(index), laneLatency_(cores, 0)
{
    nvm_ = std::make_unique<mem::NvmDevice>(
        mem::MemoryMap(slice_config.dataBytes).deviceBytes());
    nvm_->journalEnable();
    engine_ = core::makeEngine(protocol, slice_config, *nvm_);
    trackCommitted_ = slice_config.trackContents;
    captureCommitted();
}

void
EngineShard::enqueue(const ShardOp &op)
{
    pending_.push_back(op);
}

void
EngineShard::swapInflight()
{
    inflight_.swap(pending_);
    pending_.clear();
}

void
EngineShard::apply(const ShardOp &op)
{
    if (op.isWrite) {
        if (trackCommitted_ && op.hasData) {
            // First write per block per epoch: remember what the
            // functional plaintext mirror held at the last commit, so
            // a torn-epoch rollback can restore it (a stale entry
            // would silently corrupt post-recovery page
            // re-encryption).
            auto [it, fresh] =
                plaintextPre_.try_emplace(blockOf(op.addr));
            if (fresh) {
                auto p = engine_->plaintext_.find(blockOf(op.addr));
                if (p != engine_->plaintext_.end()) {
                    it->second.present = true;
                    it->second.bytes = p->second;
                }
            }
        }
        laneLatency_[op.core] += engine_->write(
            op.addr, op.hasData ? op.data.data() : nullptr);
    } else {
        laneLatency_[op.core] += engine_->read(op.addr, nullptr);
    }
}

void
EngineShard::drainList(std::vector<ShardOp> &ops)
{
    if (ops.empty())
        return;
    // Epoch coalescing: only the last write per block in this batch
    // is observable (commits are all-or-nothing per epoch; readers
    // drain first), and a block already fetched or written in the
    // batch is resident, so repeat accesses fold into the block's one
    // engine operation at zero simulated cost. Purely a function of
    // the batch's own sequence — identical at any lane count.
    lastWrite_.clear();
    touched_.clear();
    for (std::size_t i = 0; i < ops.size(); ++i)
        if (ops[i].isWrite)
            lastWrite_[blockOf(ops[i].addr)] =
                static_cast<std::uint32_t>(i);
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const ShardOp &op = ops[i];
        const BlockId b = blockOf(op.addr);
        if (op.isWrite) {
            const auto it = lastWrite_.find(b);
            if (it->second != static_cast<std::uint32_t>(i)) {
                ++coalesced_;
                continue;
            }
        } else if (touched_.contains(b)) {
            ++coalesced_;
            continue;
        }
        apply(op);
        touched_[b] = 1;
        ++uniqueBlocks_;
        if (touchedPages_.try_emplace(b / kBlocksPerPage).second)
            ++uniquePages_;
    }
    touchedPages_.clear();
    ops.clear();
}

void
EngineShard::drainInflight()
{
    drainList(inflight_);
}

void
EngineShard::drainPending()
{
    drainList(pending_);
}

void
EngineShard::dropPending()
{
    pending_.clear();
    inflight_.clear();
}

void
EngineShard::captureCommitted()
{
    committedRoot_ = engine_->rootRegister();
    if (trackCommitted_)
        committedShadow_ = engine_->strategy().cloneShadow();
    nvm_->journalClear();
    plaintextPre_.clear();
}

void
EngineShard::rollbackTornEpoch()
{
    mee::MemoryEngine &eng = *engine_;
    const std::vector<Addr> rolled = nvm_->journalRollback();
    ++rollbacks_;
    // The persisted-MAC table describes durable contents; recompute
    // it for every rolled metadata block exactly the way persistBytes
    // recorded it (absent-or-all-zero blocks carry no entry). Data
    // blocks have no persisted-MAC entry — their authentication goes
    // through the HMAC region, which rolls back like any metadata.
    mem::Block bytes;
    for (Addr a : rolled) {
        if (eng.map_.classify(a) == mem::Region::Data)
            continue;
        nvm_->peek(a, bytes);
        if (blockZero(bytes))
            eng.persistedMac_.erase(a);
        else
            eng.persistedMac_[a] = eng.crypto_.hash->mac64(
                bytes.data(), bytes.size(), a);
    }
}

void
EngineShard::restorePlaintext()
{
    mee::MemoryEngine &eng = *engine_;
    for (const auto &kv : plaintextPre_) {
        if (kv.second.present)
            eng.plaintext_.try_emplace(kv.first).first->second =
                kv.second.bytes;
        else
            eng.plaintext_.erase(kv.first);
    }
    plaintextPre_.clear();
}

mee::RecoveryReport
EngineShard::recoverSlice()
{
    mee::MemoryEngine &eng = *engine_;
    if (nvm_->journalDirty())
        rollbackTornEpoch();
    restorePlaintext();
    // Restore the NV registers the commit record latched. For a slice
    // whose epoch was not torn these assignments are identities; for
    // a torn slice they turn the rolled-back NVM image plus NV state
    // into exactly the machine that crashed right after the last
    // commit — a boundary the per-engine crash matrix validates.
    eng.rootRegister_ = committedRoot_;
    if (committedShadow_ != nullptr)
        eng.strategy().restoreShadow(*committedShadow_);
    return eng.recover();
}

void
EngineShard::harvest(std::vector<Cycle> &out)
{
    const std::size_t n = std::min(out.size(), laneLatency_.size());
    for (std::size_t i = 0; i < n; ++i) {
        out[i] += laneLatency_[i];
        laneLatency_[i] = 0;
    }
}

// ----------------------------------------------------------------
// ShardedEngine

ShardedEngine::ShardedEngine(mee::Protocol protocol,
                             const mee::MeeConfig &total,
                             const ShardOptions &opts)
    : part_(total.dataBytes, resolveOptions(opts).slices),
      epochWrites_(resolveOptions(opts).epochWrites),
      cores_(resolveOptions(opts).cores),
      recordCrypto_(crypto::CryptoSuite::make(
          total.plane, total.keySeed ^ 0xec0cull))
{
    const ShardOptions r = resolveOptions(opts);
    // Reads buffer too; bound queue growth on read-only phases.
    epochOpsCap_ = epochWrites_ * 8;
    opsBuffered_ = &stats_.counter("ops_buffered");
    writesBuffered_ = &stats_.counter("writes_buffered");

    mee::MeeConfig slice_cfg = total;
    slice_cfg.dataBytes = part_.sliceBytes;
    for (unsigned i = 0; i < r.slices; ++i)
        shards_.push_back(std::make_unique<EngineShard>(
            i, protocol, slice_cfg, cores_));

    if (r.lanes > 1)
        pool_ = std::make_unique<ThreadPool>(r.lanes);
}

ShardedEngine::~ShardedEngine()
{
    waitInflight();
}

void
ShardedEngine::waitInflight()
{
    if (pool_ != nullptr)
        pool_->wait();
}

Cycle
ShardedEngine::write(Addr addr, const std::uint8_t *data,
                     unsigned core)
{
    const unsigned s = part_.shardFor(addr);
    ShardOp op;
    op.addr = part_.localAddr(addr);
    op.core = core;
    op.isWrite = true;
    if (data != nullptr) {
        op.hasData = true;
        std::memcpy(op.data.data(), data, kBlockSize);
    }
    shards_[s]->enqueue(op);
    ++*opsBuffered_;
    ++*writesBuffered_;
    ++writesThisEpoch_;
    ++opsThisEpoch_;
    if (writesThisEpoch_ >= epochWrites_ ||
        opsThisEpoch_ >= epochOpsCap_)
        closeEpoch();
    return 0;
}

Cycle
ShardedEngine::read(Addr addr, std::uint8_t *out, unsigned core)
{
    const unsigned s = part_.shardFor(addr);
    if (out == nullptr) {
        ShardOp op;
        op.addr = part_.localAddr(addr);
        op.core = core;
        shards_[s]->enqueue(op);
        ++*opsBuffered_;
        ++opsThisEpoch_;
        if (opsThisEpoch_ >= epochOpsCap_)
            closeEpoch();
        return 0;
    }
    // Functional read: every buffered operation program-order before
    // it must be visible. Drain without committing — the pre-image
    // journals keep the drained-but-uncommitted state rollbackable.
    stats_.inc("sync_reads");
    waitInflight();
    for (auto &shard : shards_)
        shard->drainInflight();
    for (auto &shard : shards_)
        shard->drainPending();
    return shards_[s]->engine().read(part_.localAddr(addr), out);
}

void
ShardedEngine::commitRecord(std::uint64_t epoch)
{
    // The commit record: the epoch number and every slice's NV root
    // register value, MAC'd as one cross-shard mac64xN burst (the
    // record is a single 64 B line; its MAC binds the slice roots
    // together so recovery can detect a torn record itself).
    std::vector<std::uint64_t> roots(shards_.size());
    std::vector<crypto::MacRequest> reqs(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        roots[i] = shards_[i]->engine().rootRegister();
        reqs[i] = {&roots[i], sizeof(roots[i]),
                   epoch * shards_.size() + i};
    }
    std::vector<std::uint64_t> macs(shards_.size());
    recordCrypto_.hash->mac64xN(reqs.data(), reqs.size(),
                                macs.data());
    recordMac_ = 0;
    for (std::uint64_t m : macs)
        recordMac_ ^= m;

    // The record's own persist is the LAST durable write of the
    // epoch — and its own crash boundary: a crash here leaves every
    // slice drained but the epoch uncommitted, the torn case.
    if (fd_ != nullptr)
        fd_->persistPoint();
    committedEpoch_ = epoch;
    for (auto &shard : shards_)
        shard->captureCommitted();
    stats_.inc("epochs_committed");
}

void
ShardedEngine::closeEpoch()
{
    if (pipelined()) {
        // Depth-1 pipeline: the previous epoch finishes draining and
        // commits now; the epoch being closed starts draining on the
        // lanes while the caller generates the next one. Legal
        // because buffered ops feed no state back into generation.
        waitInflight();
        if (inflightEpoch_ != 0) {
            commitRecord(inflightEpoch_);
            inflightEpoch_ = 0;
        }
        for (auto &shard : shards_)
            shard->swapInflight();
        inflightEpoch_ = currentEpoch_;
        for (auto &shard : shards_) {
            EngineShard *s = shard.get();
            if (!s->inflightEmpty())
                pool_->submit([s] { s->drainInflight(); });
        }
    } else {
        // Serial drains in slice order: deterministic crash-point
        // numbering under an attached fault domain. The fence after
        // each slice's drain is the "between a shard's epoch flush
        // and the commit record" boundary of the torn-epoch matrix.
        for (auto &shard : shards_) {
            shard->drainPending();
            if (fd_ != nullptr)
                fd_->persistPoint();
        }
        commitRecord(currentEpoch_);
    }
    ++currentEpoch_;
    writesThisEpoch_ = 0;
    opsThisEpoch_ = 0;
}

void
ShardedEngine::flush()
{
    bool pending = inflightEpoch_ != 0 || opsThisEpoch_ != 0;
    for (const auto &shard : shards_)
        pending = pending || !shard->pendingEmpty();
    if (!pending)
        return;
    if (pipelined()) {
        waitInflight();
        if (inflightEpoch_ != 0) {
            commitRecord(inflightEpoch_);
            inflightEpoch_ = 0;
        }
        for (auto &shard : shards_)
            shard->swapInflight();
        for (auto &shard : shards_) {
            EngineShard *s = shard.get();
            if (!s->inflightEmpty())
                pool_->submit([s] { s->drainInflight(); });
        }
        waitInflight();
        commitRecord(currentEpoch_);
    } else {
        for (auto &shard : shards_) {
            shard->drainPending();
            if (fd_ != nullptr)
                fd_->persistPoint();
        }
        commitRecord(currentEpoch_);
    }
    ++currentEpoch_;
    writesThisEpoch_ = 0;
    opsThisEpoch_ = 0;
}

void
ShardedEngine::crash()
{
    waitInflight();
    for (auto &shard : shards_) {
        shard->dropPending();
        shard->engine().crash();
        shard->device().crash();
    }
    inflightEpoch_ = 0;
}

mee::RecoveryReport
ShardedEngine::recover()
{
    mee::RecoveryReport agg;
    agg.success = true;
    unsigned rolled = 0;
    for (auto &shard : shards_) {
        const bool torn = shard->device().journalDirty();
        rolled += torn ? 1 : 0;
        const mee::RecoveryReport r = shard->recoverSlice();
        agg.success = agg.success && r.success;
        agg.blocksRead += r.blocksRead;
        agg.blocksWritten += r.blocksWritten;
        agg.countersRecovered += r.countersRecovered;
        agg.nodesRecomputed += r.nodesRecomputed;
        // Slices recover in parallel on real hardware: the recovery
        // time is the slowest slice, not the sum.
        agg.estimatedMs = std::max(agg.estimatedMs, r.estimatedMs);
        if (!r.success && agg.detail.empty())
            agg.detail = "shard " +
                         std::to_string(&shard - &shards_[0]) + ": " +
                         r.detail;
    }
    if (agg.success)
        agg.detail =
            "sharded: " + std::to_string(shards_.size()) +
            " slices at epoch " + std::to_string(committedEpoch_) +
            ", " + std::to_string(rolled) + " torn rolled back";
    stats_.inc("torn_epochs_rolled_back", rolled);
    // Re-baseline: the recovered state is the committed state; open
    // a fresh epoch on top of it.
    for (auto &shard : shards_)
        shard->captureCommitted();
    currentEpoch_ = committedEpoch_ + 1;
    writesThisEpoch_ = 0;
    opsThisEpoch_ = 0;
    return agg;
}

std::uint64_t
ShardedEngine::violations() const
{
    std::uint64_t v = 0;
    for (const auto &shard : shards_)
        v += shard->engine().violations();
    return v;
}

void
ShardedEngine::setFaultDomain(fault::FaultDomain *domain)
{
    fd_ = domain;
    for (auto &shard : shards_) {
        shard->device().setFaultDomain(domain);
        if (domain != nullptr)
            shard->setTrackCommitted(true);
    }
    if (domain != nullptr) {
        // The baseline must reflect state at attach time, not
        // construction time (shadows were not tracked before).
        for (auto &shard : shards_)
            shard->captureCommitted();
    }
}

void
ShardedEngine::registerStats(obs::StatRegistry &reg)
{
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        const std::string tag = "shard" + std::to_string(i);
        shards_[i]->engine().registerStats(reg, "mee." + tag);
        shards_[i]->device().registerStats(reg, "nvm." + tag);
        const mem::NvmDevice *dev = &shards_[i]->device();
        reg.addScalar("nvm." + tag + ".journal_captures",
                      [dev] { return dev->journalCaptures(); });
        reg.addScalar("nvm." + tag + ".journal_rollbacks",
                      [dev] { return dev->journalRollbacks(); });
    }
    reg.addGroup("shard.epoch", &stats_);
    reg.addScalar("shard.slices", [this] { return shards_.size(); });
    // Lane threads bump per-shard counters; summed here so the value
    // is one deterministic scalar (coalescing is lane-independent).
    reg.addScalar("shard.coalesced_ops", [this] {
        std::uint64_t n = 0;
        for (const auto &shard : shards_)
            n += shard->coalescedOps();
        return n;
    });
    reg.addScalar("shard.applied_blocks", [this] {
        std::uint64_t n = 0;
        for (const auto &shard : shards_)
            n += shard->uniqueBlocksApplied();
        return n;
    });
    reg.addScalar("shard.applied_pages", [this] {
        std::uint64_t n = 0;
        for (const auto &shard : shards_)
            n += shard->uniquePagesApplied();
        return n;
    });
}

void
ShardedEngine::harvestLatencies(std::vector<Cycle> &per_core)
{
    waitInflight();
    for (auto &shard : shards_)
        shard->harvest(per_core);
}

} // namespace amnt::shard
