/**
 * @file
 * Sharded multi-engine scale-out with epoch-batched persist ordering.
 *
 * One protocol engine owns the whole physical address space in the
 * base simulator, so the batched crypto kernels (mac64xN / padxN)
 * only ever see single-engine bursts and host throughput is capped
 * well below the machine's core count (ROADMAP item 2). The sharded
 * engine removes that cap in two decoupled steps:
 *
 *  1. A FIXED logical partition (shard/partition.hh): the protected
 *     data range is always split into `slices` equal slices, each a
 *     full mee::MemoryEngine with its own metadata cache, counter
 *     table, BMT subtree and NvmDevice. The slice count is a model
 *     parameter (AMNT_SHARD_SLICES, default 4) — it defines the
 *     simulated machine.
 *
 *  2. Host drain lanes (`--shards=N` / AMNT_SHARDS): how many host
 *     threads drain slice queues in parallel. Lanes are pure
 *     execution policy — each slice's operation sequence is the
 *     global arrival order restricted to that slice, independent of
 *     lane count, so results are byte-identical at any shard count.
 *
 * Epoch-batched persist ordering: operations enqueue into per-slice
 * queues and drain in numbered epochs (closed every `epochWrites`
 * buffered writes, or at flush()). Within one drain batch the slice
 * COALESCES (STIT-style): commits are all-or-nothing at epoch
 * granularity and reads drain the queue before returning data, so a
 * block's intermediate writes are invisible to both readers and
 * crash recovery — only the last write per block reaches the engine,
 * and repeat accesses to a block already touched in the batch are
 * absorbed (simulated cost 0: they coalesce into the block's one
 * engine operation). Coalescing is a function of the batch's op
 * sequence alone, so it is identical at any lane count — it is what
 * makes the epoch model cheaper to simulate AND cheaper on modeled
 * hardware than per-op persist ordering. After all slices drained,
 * the
 * coordinator MACs the per-slice root registers through one
 * mac64xN burst and persists a small cross-shard epoch commit record
 * LAST — Anubis/BMF-style shadow tracking lifted to epoch level.
 * Each slice device also keeps a pre-image journal of the open
 * epoch's content writes. A crash that tears an epoch (some slices
 * drained, commit record absent) is recovered by rolling every slice
 * back to the last fully-committed epoch: journal rollback restores
 * durable pre-images, then the engine's persisted-MAC table,
 * functional plaintext mirror, NV root register and protocol shadow
 * (ProtocolStrategy::cloneShadow) are restored from the commit
 * record before the normal per-engine recovery runs. The recovered
 * state is exactly "crashed right after the last commit", a boundary
 * the per-engine crash matrix already validates. See DESIGN.md §15.
 */

#ifndef AMNT_SHARD_SHARDED_ENGINE_HH
#define AMNT_SHARD_SHARDED_ENGINE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/thread_pool.hh"
#include "common/types.hh"
#include "mee/engine.hh"
#include "mee/protocol.hh"
#include "shard/partition.hh"

namespace amnt::obs
{
class StatRegistry;
}

namespace amnt::shard
{

/** Sharded-engine construction knobs. */
struct ShardOptions
{
    /**
     * Logical slice count (the model parameter). 0 resolves
     * AMNT_SHARD_SLICES, default 4. Changing it changes the
     * simulated machine; changing `lanes` never does.
     */
    unsigned slices = 0;

    /** Host drain lanes (`--shards=N`). 1 = serial drains. */
    unsigned lanes = 1;

    /**
     * Buffered writes per epoch before the coordinator closes it.
     * 0 resolves AMNT_SHARD_EPOCH, default 1024.
     */
    std::uint64_t epochWrites = 0;

    /** Cores feeding the engine (per-core latency accumulators). */
    unsigned cores = 1;
};

/** One buffered memory operation awaiting its epoch drain. */
struct ShardOp
{
    Addr addr = 0; ///< slice-local address
    unsigned core = 0;
    bool isWrite = false;
    bool hasData = false;
    mem::Block data{};
};

/**
 * One slice: a full protocol engine over 1/S of the data range, its
 * own NVM device, the slice's operation queues, and the durable
 * snapshot of the last committed epoch (NV root register value,
 * protocol shadow, functional plaintext pre-images).
 */
class EngineShard
{
  public:
    EngineShard(unsigned index, mee::Protocol protocol,
                const mee::MeeConfig &slice_config, unsigned cores);

    mee::MemoryEngine &engine() { return *engine_; }
    const mee::MemoryEngine &engine() const { return *engine_; }
    mem::NvmDevice &device() { return *nvm_; }

    /** Buffer one operation for the open epoch. */
    void enqueue(const ShardOp &op);

    bool pendingEmpty() const { return pending_.empty(); }
    bool inflightEmpty() const { return inflight_.empty(); }

    /** Move the open epoch's queue into the in-flight slot. */
    void swapInflight();

    /** Apply the in-flight queue (safe on a drain-lane thread). */
    void drainInflight();

    /** Apply the open queue inline (serial / fault-domain mode). */
    void drainPending();

    /** Discard buffered operations (power failure). */
    void dropPending();

    /**
     * Epoch commit: latch the NV root register value and protocol
     * shadow as the new durable baseline and discard the pre-image
     * journal and plaintext pre-images of the closed epoch.
     */
    void captureCommitted();

    /**
     * Torn-epoch recovery, between crash() and the engine's
     * recover(): roll the device journal back, recompute the
     * persisted-MAC table for the rolled metadata blocks, restore
     * the functional plaintext mirror, NV root register and protocol
     * shadow to the committed baseline — then run the engine's
     * normal recovery from that (consistent) state.
     */
    mee::RecoveryReport recoverSlice();

    /** Add this slice's per-core drain latencies to @p out; reset. */
    void harvest(std::vector<Cycle> &out);

    /** Capture functional/shadow baselines (fault-domain runs). */
    void setTrackCommitted(bool on) { trackCommitted_ = on; }

    /** Torn-epoch rollbacks this slice performed (stat). */
    std::uint64_t rollbacks() const { return rollbacks_; }

    /** Ops absorbed by epoch coalescing so far (stat). */
    std::uint64_t coalescedOps() const { return coalesced_; }

    /** Distinct blocks / pages engine-applied across drains (stats):
     *  the batch locality the epoch model's amortization rides on. */
    std::uint64_t uniqueBlocksApplied() const { return uniqueBlocks_; }
    std::uint64_t uniquePagesApplied() const { return uniquePages_; }

  private:
    void apply(const ShardOp &op);
    void drainList(std::vector<ShardOp> &ops);
    void rollbackTornEpoch();
    void restorePlaintext();

    /** First-write-per-epoch pre-image of the plaintext mirror. */
    struct PlainPre
    {
        bool present = false;
        mem::Block bytes{};
    };

    unsigned index_;
    std::unique_ptr<mem::NvmDevice> nvm_;
    std::unique_ptr<mee::MemoryEngine> engine_;

    std::vector<ShardOp> pending_;
    std::vector<ShardOp> inflight_;
    std::vector<Cycle> laneLatency_; ///< per core, merged at harvest

    /** Durable baseline at the last committed epoch. */
    std::uint64_t committedRoot_ = 0;
    std::unique_ptr<mee::ProtocolShadow> committedShadow_;
    FlatMap<BlockId, PlainPre> plaintextPre_;
    bool trackCommitted_ = false;
    std::uint64_t rollbacks_ = 0;
    std::uint64_t coalesced_ = 0;
    std::uint64_t uniqueBlocks_ = 0;
    std::uint64_t uniquePages_ = 0;

    /** Scratch for drainList; members so capacity is reused. */
    FlatMap<BlockId, std::uint32_t> lastWrite_;
    FlatMap<BlockId, std::uint8_t> touched_;
    FlatMap<std::uint64_t, std::uint8_t> touchedPages_;
};

/**
 * The sharded engine facade: partitions addresses over the slices,
 * buffers operations into epochs, drains slices on the configured
 * lanes, and persists the cross-shard commit record.
 */
class ShardedEngine
{
  public:
    /**
     * @param protocol The protocol every slice runs.
     * @param total    Engine geometry for the WHOLE data range; each
     *                 slice gets dataBytes / slices of it.
     * @param opts     Slice/lane/epoch knobs (see ShardOptions).
     */
    ShardedEngine(mee::Protocol protocol, const mee::MeeConfig &total,
                  const ShardOptions &opts = {});
    ~ShardedEngine();

    ShardedEngine(const ShardedEngine &) = delete;
    ShardedEngine &operator=(const ShardedEngine &) = delete;

    /**
     * Buffer a data write for the owning slice. Returns 0: the
     * latency accrues at drain time per core and is collected with
     * harvestLatencies().
     */
    Cycle write(Addr addr, const std::uint8_t *data = nullptr,
                unsigned core = 0);

    /**
     * Data read. With @p out == nullptr the read is buffered like a
     * write (timing plane). A functional read (@p out != nullptr)
     * first drains every pending operation — without committing the
     * epoch — and returns the decrypted bytes and real latency.
     */
    Cycle read(Addr addr, std::uint8_t *out = nullptr,
               unsigned core = 0);

    /** Drain everything and commit the open epoch. */
    void flush();

    /** Power failure across all slices; buffered ops are lost. */
    void crash();

    /** Recover every slice to the last fully-committed epoch. */
    mee::RecoveryReport recover();

    /** Sum of integrity violations across slices. */
    std::uint64_t violations() const;

    /**
     * Attach one fault domain to every slice device and the
     * coordinator's commit-record boundary. Enables the committed
     * shadow/plaintext baselines needed for torn-epoch rollback.
     */
    void setFaultDomain(fault::FaultDomain *domain);

    /** Highest fully-committed epoch (0 before the first commit). */
    std::uint64_t committedEpoch() const { return committedEpoch_; }

    /** The open (enqueue-target) epoch number. */
    std::uint64_t currentEpoch() const { return currentEpoch_; }

    /** Writes per epoch after env resolution. */
    std::uint64_t epochWrites() const { return epochWrites_; }

    const Partition &partition() const { return part_; }
    unsigned sliceCount() const
    {
        return static_cast<unsigned>(shards_.size());
    }
    EngineShard &shard(unsigned i) { return *shards_[i]; }
    const EngineShard &shard(unsigned i) const { return *shards_[i]; }

    /**
     * Federate every slice under "mee.shard<i>.*" / "nvm.shard<i>.*"
     * plus the coordinator under "shard.epoch.*". All registered
     * values are simulated state, independent of the lane count.
     */
    void registerStats(obs::StatRegistry &reg);

    /** Add accrued per-core drain latencies to @p per_core; reset. */
    void harvestLatencies(std::vector<Cycle> &per_core);

    /** Coordinator statistics (epochs committed, ops buffered...). */
    const StatGroup &stats() const { return stats_; }

  private:
    void closeEpoch();
    void waitInflight();
    void commitRecord(std::uint64_t epoch);
    bool pipelined() const
    {
        return pool_ != nullptr && fd_ == nullptr;
    }

    Partition part_;
    std::uint64_t epochWrites_;
    std::uint64_t epochOpsCap_;
    unsigned cores_;
    std::vector<std::unique_ptr<EngineShard>> shards_;
    std::unique_ptr<ThreadPool> pool_;
    fault::FaultDomain *fd_ = nullptr;

    /** Platform suite MAC-ing the commit record's root vector. */
    crypto::CryptoSuite recordCrypto_;
    std::uint64_t recordMac_ = 0; ///< last commit record's MAC

    StatGroup stats_;
    std::uint64_t *opsBuffered_ = nullptr;
    std::uint64_t *writesBuffered_ = nullptr;
    std::uint64_t writesThisEpoch_ = 0;
    std::uint64_t opsThisEpoch_ = 0;
    std::uint64_t currentEpoch_ = 1;
    std::uint64_t committedEpoch_ = 0;

    /** Pipelined mode: epoch drained/draining but uncommitted. */
    std::uint64_t inflightEpoch_ = 0;
};

/** Resolve ShardOptions defaults (AMNT_SHARD_SLICES/AMNT_SHARD_EPOCH). */
ShardOptions resolveOptions(ShardOptions opts);

} // namespace amnt::shard

#endif // AMNT_SHARD_SHARDED_ENGINE_HH
