/**
 * @file
 * Static partition of the protected physical address space into
 * equal, page-aligned slices.
 *
 * The sharded engine (shard/sharded_engine.hh) models scale-out as a
 * FIXED logical partition: the protected data range is always split
 * into `slices` equal slices, each owned by one protocol engine with
 * its own metadata cache, counter table, BMT subtree and NVM device.
 * Host parallelism (the `--shards=N` drain lanes) never changes the
 * partition — that is what makes results byte-identical at any shard
 * count (DESIGN.md §15).
 *
 * The partition is total and disjoint by construction: every data
 * address belongs to exactly one slice, and
 * globalAddr(shardFor(a), localAddr(a)) == a for all a in range.
 */

#ifndef AMNT_SHARD_PARTITION_HH
#define AMNT_SHARD_PARTITION_HH

#include <cstdint>

#include "common/log.hh"
#include "common/types.hh"

namespace amnt::shard
{

/** Equal page-aligned split of [0, dataBytes) into `slices` slices. */
struct Partition
{
    std::uint64_t dataBytes = 0;  ///< total protected data
    std::uint64_t sliceBytes = 0; ///< bytes per slice
    unsigned slices = 1;

    Partition(std::uint64_t data_bytes, unsigned n)
        : dataBytes(data_bytes), slices(n)
    {
        if (n == 0)
            panic("partition needs at least one slice");
        if (data_bytes == 0 || data_bytes % n != 0)
            panic("partition: %llu bytes do not split into %u equal "
                  "slices",
                  static_cast<unsigned long long>(data_bytes), n);
        sliceBytes = data_bytes / n;
        if (sliceBytes % kPageSize != 0)
            panic("partition: slice size %llu is not page aligned",
                  static_cast<unsigned long long>(sliceBytes));
    }

    /** Slice owning @p addr; addr must lie in [0, dataBytes). */
    unsigned
    shardFor(Addr addr) const
    {
        if (addr >= dataBytes)
            panic("partition: address %llx beyond data range %llx",
                  static_cast<unsigned long long>(addr),
                  static_cast<unsigned long long>(dataBytes));
        return static_cast<unsigned>(addr / sliceBytes);
    }

    /** Slice-local offset of @p addr. */
    Addr
    localAddr(Addr addr) const
    {
        if (addr >= dataBytes)
            panic("partition: address %llx beyond data range %llx",
                  static_cast<unsigned long long>(addr),
                  static_cast<unsigned long long>(dataBytes));
        return addr % sliceBytes;
    }

    /** Inverse of (shardFor, localAddr). */
    Addr
    globalAddr(unsigned shard, Addr local) const
    {
        if (shard >= slices)
            panic("partition: shard %u out of %u", shard, slices);
        if (local >= sliceBytes)
            panic("partition: local address %llx beyond slice size "
                  "%llx",
                  static_cast<unsigned long long>(local),
                  static_cast<unsigned long long>(sliceBytes));
        return static_cast<Addr>(shard) * sliceBytes + local;
    }
};

} // namespace amnt::shard

#endif // AMNT_SHARD_PARTITION_HH
