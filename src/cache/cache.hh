/**
 * @file
 * Set-associative cache model with LRU replacement and per-line dirty
 * bits, used both for the on-chip data hierarchy and for the 64 kB
 * security-metadata cache.
 *
 * The model is tag-only: block contents travel through the engines
 * that own the cache, which keeps the same class usable by the
 * content-free timing plane and the functional plane. Eviction of a
 * dirty line invokes a caller-provided write-back handler.
 */

#ifndef AMNT_CACHE_CACHE_HH
#define AMNT_CACHE_CACHE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace amnt::cache
{

/** Construction parameters. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 64 * 1024;
    unsigned ways = 8;
    Cycle hitLatency = 2;
};

/** Outcome of an access. */
struct AccessResult
{
    bool hit = false;
    bool evictedValid = false;  ///< a victim line was displaced
    bool evictedDirty = false;  ///< ... and it was dirty
    Addr evictedAddr = 0;       ///< block address of the victim
};

/**
 * Tag-array cache. Addresses are block aligned internally; any byte
 * address within a block refers to the same line.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    // Noncopyable: hot-path counters point into the stats group.
    Cache(const Cache &) = delete;
    Cache &operator=(const Cache &) = delete;

    /** Cache name (statistics prefix). */
    const std::string &name() const { return config_.name; }

    /** Total line count. */
    std::uint64_t lines() const { return numSets_ * config_.ways; }

    /**
     * Lines currently dirty (write-queue residency: the write-back
     * work outstanding against backing memory). Maintained
     * incrementally, so sampling it per access is O(1).
     */
    std::uint64_t dirtyLines() const { return dirtyLines_; }

    /** Hit latency in cycles. */
    Cycle hitLatency() const { return config_.hitLatency; }

    /**
     * Look up @p addr; on hit, refresh LRU and optionally set the
     * dirty bit. Does not allocate on miss.
     */
    bool access(Addr addr, bool set_dirty);

    /** Non-mutating presence test. */
    bool contains(Addr addr) const;

    /** Non-mutating dirty test (false when absent). */
    bool isDirty(Addr addr) const;

    /**
     * Allocate a line for @p addr (must not currently hit). The LRU
     * way of the set is the victim; its identity is reported in the
     * result so the owner can write back content.
     */
    AccessResult insert(Addr addr, bool dirty);

    /** Clear the dirty bit of a resident line (write-through commit). */
    void clean(Addr addr);

    /** Invalidate one line if present; returns whether it was dirty. */
    bool invalidate(Addr addr);

    /** Drop every line (power loss of a volatile array). */
    void invalidateAll();

    /**
     * Visit every valid line: visitor(addr, dirty). Iteration order is
     * unspecified. Used by AMNT's subtree-movement dirty scan.
     */
    void forEachLine(
        const std::function<void(Addr, bool)> &visitor) const;

    /** Clear dirty bits that @p pred selects; returns count cleaned. */
    std::uint64_t cleanIf(const std::function<bool(Addr)> &pred);

    /** Statistics: hits, misses, evictions, dirty evictions. */
    const StatGroup &stats() const { return stats_; }

    /** Mutable statistics (registry federation / reset-in-place). */
    StatGroup &stats() { return stats_; }

    /** Hit rate over all accesses so far. */
    double
    hitRate() const
    {
        return stats_.ratio("hits", "misses");
    }

  private:
    struct Line
    {
        Addr tag = 0; ///< block-aligned address
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t setOf(Addr addr) const;
    Line *find(Addr addr);
    const Line *find(Addr addr) const;

    CacheConfig config_;
    std::uint64_t numSets_;
    std::vector<Line> lines_;
    std::uint64_t useClock_ = 0;
    std::uint64_t dirtyLines_ = 0;
    StatGroup stats_;

    // Per-access counters resolved once (see StatGroup::counter).
    std::uint64_t *hits_;
    std::uint64_t *misses_;
    std::uint64_t *fills_;
    std::uint64_t *evictions_;
    std::uint64_t *dirtyEvictions_;
};

} // namespace amnt::cache

#endif // AMNT_CACHE_CACHE_HH
