#include "cache/cache.hh"

#include "common/bitops.hh"
#include "common/log.hh"

namespace amnt::cache
{

Cache::Cache(const CacheConfig &config) : config_(config)
{
    if (config.sizeBytes == 0 || config.ways == 0)
        panic("cache %s: zero size or associativity",
              config.name.c_str());
    const std::uint64_t total_lines = config.sizeBytes / kBlockSize;
    if (total_lines < config.ways)
        panic("cache %s: fewer lines than ways", config.name.c_str());
    numSets_ = total_lines / config.ways;
    if (!isPowerOfTwo(numSets_))
        panic("cache %s: set count %llu not a power of two",
              config.name.c_str(),
              static_cast<unsigned long long>(numSets_));
    lines_.resize(numSets_ * config.ways);
    hits_ = &stats_.counter("hits");
    misses_ = &stats_.counter("misses");
    fills_ = &stats_.counter("fills");
    evictions_ = &stats_.counter("evictions");
    dirtyEvictions_ = &stats_.counter("dirty_evictions");
}

std::uint64_t
Cache::setOf(Addr addr) const
{
    return blockOf(addr) & (numSets_ - 1);
}

Cache::Line *
Cache::find(Addr addr)
{
    const Addr tag = blockAddr(blockOf(addr));
    Line *set = &lines_[setOf(addr) * config_.ways];
    for (unsigned w = 0; w < config_.ways; ++w) {
        if (set[w].valid && set[w].tag == tag)
            return &set[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::find(Addr addr) const
{
    return const_cast<Cache *>(this)->find(addr);
}

bool
Cache::access(Addr addr, bool set_dirty)
{
    Line *line = find(addr);
    if (line == nullptr) {
        ++*misses_;
        return false;
    }
    ++*hits_;
    line->lastUse = ++useClock_;
    if (set_dirty && !line->dirty) {
        line->dirty = true;
        ++dirtyLines_;
    }
    return true;
}

bool
Cache::contains(Addr addr) const
{
    return find(addr) != nullptr;
}

bool
Cache::isDirty(Addr addr) const
{
    const Line *line = find(addr);
    return line != nullptr && line->dirty;
}

AccessResult
Cache::insert(Addr addr, bool dirty)
{
    if (find(addr) != nullptr)
        panic("cache %s: insert of resident block", config_.name.c_str());

    Line *set = &lines_[setOf(addr) * config_.ways];
    Line *victim = &set[0];
    for (unsigned w = 0; w < config_.ways; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }

    AccessResult result;
    if (victim->valid) {
        result.evictedValid = true;
        result.evictedDirty = victim->dirty;
        result.evictedAddr = victim->tag;
        ++*evictions_;
        if (victim->dirty) {
            ++*dirtyEvictions_;
            --dirtyLines_;
        }
    }
    victim->tag = blockAddr(blockOf(addr));
    victim->valid = true;
    victim->dirty = dirty;
    if (dirty)
        ++dirtyLines_;
    victim->lastUse = ++useClock_;
    ++*fills_;
    return result;
}

void
Cache::clean(Addr addr)
{
    Line *line = find(addr);
    if (line != nullptr && line->dirty) {
        line->dirty = false;
        --dirtyLines_;
    }
}

bool
Cache::invalidate(Addr addr)
{
    Line *line = find(addr);
    if (line == nullptr)
        return false;
    const bool was_dirty = line->dirty;
    if (was_dirty)
        --dirtyLines_;
    line->valid = false;
    line->dirty = false;
    return was_dirty;
}

void
Cache::invalidateAll()
{
    for (auto &line : lines_) {
        line.valid = false;
        line.dirty = false;
    }
    dirtyLines_ = 0;
}

void
Cache::forEachLine(const std::function<void(Addr, bool)> &visitor) const
{
    for (const auto &line : lines_) {
        if (line.valid)
            visitor(line.tag, line.dirty);
    }
}

std::uint64_t
Cache::cleanIf(const std::function<bool(Addr)> &pred)
{
    std::uint64_t cleaned = 0;
    for (auto &line : lines_) {
        if (line.valid && line.dirty && pred(line.tag)) {
            line.dirty = false;
            --dirtyLines_;
            ++cleaned;
        }
    }
    return cleaned;
}

} // namespace amnt::cache
