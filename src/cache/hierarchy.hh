/**
 * @file
 * Multi-level data-cache hierarchy in front of the secure memory
 * controller.
 *
 * A hierarchy is a path of Cache objects (L1 first). Caches may be
 * shared between hierarchies (e.g. a shared LLC among per-core private
 * levels in the multiprogram configuration); the path holds non-owning
 * pointers. Misses at the last level call out to the secure memory
 * engine through user-provided callbacks, as do dirty write-backs —
 * those write-backs are exactly the "data writes" whose metadata
 * persistence the paper's protocols manage.
 */

#ifndef AMNT_CACHE_HIERARCHY_HH
#define AMNT_CACHE_HIERARCHY_HH

#include <functional>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "common/types.hh"

namespace amnt::obs
{
class StatRegistry;
}

namespace amnt::cache
{

/**
 * Write-allocate, write-back hierarchy walk. Fill policy is
 * inclusive: a block filled from memory is installed at every level.
 */
class CacheHierarchy
{
  public:
    /** Latency-returning callbacks into the memory controller. */
    using MemReadFn = std::function<Cycle(Addr)>;
    using MemWriteFn = std::function<Cycle(Addr)>;

    /**
     * @param path      Cache levels, L1 first; non-owning.
     * @param mem_read  Invoked on a miss at the last level.
     * @param mem_write Invoked when a dirty block leaves the last level.
     */
    CacheHierarchy(std::vector<Cache *> path, MemReadFn mem_read,
                   MemWriteFn mem_write);

    /** Perform one access; returns the latency in cycles. */
    Cycle access(Addr addr, AccessType type);

    /** Drop all cached state (power loss); dirty data is lost. */
    void invalidateAll();

    /** Reads that reached memory. */
    std::uint64_t memReads() const { return memReads_; }

    /** Write-backs that reached memory. */
    std::uint64_t memWrites() const { return memWrites_; }

    /**
     * Register memory-traffic probes (`<prefix>.mem_reads`,
     * `.mem_writes`) with a stats registry (obs/registry.hh).
     */
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix) const;

  private:
    /**
     * Install @p addr at level @p level, recursively absorbing dirty
     * victims into the next level down (or memory). Returns the
     * latency the displaced write-backs add: when a dirty block
     * leaves the last level its metadata persistence work (ordered
     * NVM persists under strict-style protocols) stalls the access
     * that triggered the eviction.
     */
    Cycle installAt(std::size_t level, Addr addr, bool dirty);

    std::vector<Cache *> path_;
    MemReadFn memRead_;
    MemWriteFn memWrite_;
    std::uint64_t memReads_ = 0;
    std::uint64_t memWrites_ = 0;
};

} // namespace amnt::cache

#endif // AMNT_CACHE_HIERARCHY_HH
