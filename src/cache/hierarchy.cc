#include "cache/hierarchy.hh"

#include "common/log.hh"
#include "obs/registry.hh"

namespace amnt::cache
{

CacheHierarchy::CacheHierarchy(std::vector<Cache *> path,
                               MemReadFn mem_read, MemWriteFn mem_write)
    : path_(std::move(path)), memRead_(std::move(mem_read)),
      memWrite_(std::move(mem_write))
{
    if (path_.empty())
        panic("CacheHierarchy requires at least one level");
}

Cycle
CacheHierarchy::installAt(std::size_t level, Addr addr, bool dirty)
{
    if (level >= path_.size()) {
        // Dirty block leaves the hierarchy: a data write arrives at
        // the secure memory controller and its metadata-persistence
        // cost lands on the evicting access. Clean blocks vanish.
        if (dirty) {
            ++memWrites_;
            return memWrite_(addr);
        }
        return 0;
    }
    Cache *c = path_[level];
    if (c->contains(addr)) {
        if (dirty)
            c->access(addr, true);
        return 0;
    }
    const AccessResult res = c->insert(addr, dirty);
    if (res.evictedValid)
        return installAt(level + 1, res.evictedAddr, res.evictedDirty);
    return 0;
}

Cycle
CacheHierarchy::access(Addr addr, AccessType type)
{
    const bool write = type == AccessType::Write;
    Cycle latency = 0;

    for (std::size_t i = 0; i < path_.size(); ++i) {
        latency += path_[i]->hitLatency();
        if (path_[i]->access(addr, write && i == 0)) {
            // Hit at level i: fill the levels above it.
            for (std::size_t j = i; j-- > 0;) {
                const AccessResult res =
                    path_[j]->insert(addr, write && j == 0);
                if (res.evictedValid)
                    latency += installAt(j + 1, res.evictedAddr,
                                          res.evictedDirty);
            }
            return latency;
        }
    }

    // Miss everywhere: fetch from the secure memory controller.
    ++memReads_;
    latency += memRead_(addr);
    for (std::size_t j = path_.size(); j-- > 0;) {
        const AccessResult res = path_[j]->insert(addr, write && j == 0);
        if (res.evictedValid)
            latency += installAt(j + 1, res.evictedAddr,
                                 res.evictedDirty);
    }
    return latency;
}

void
CacheHierarchy::invalidateAll()
{
    for (Cache *c : path_)
        c->invalidateAll();
}

void
CacheHierarchy::registerStats(obs::StatRegistry &reg,
                              const std::string &prefix) const
{
    reg.addScalar(prefix + ".mem_reads", [this] { return memReads_; });
    reg.addScalar(prefix + ".mem_writes",
                  [this] { return memWrites_; });
}

} // namespace amnt::cache
