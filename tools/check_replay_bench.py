#!/usr/bin/env python3
"""Replay-throughput regression gate and history appender.

Compares a fresh bench_replay JSON dump (the JsonSink format:
{"bench": "bench_replay", "rows": [...]}) against the recorded
history in results/BENCH_replay.json and fails when any
(protocol, preset, shards) cell is more than --threshold slower than
its most recent recorded entry. Cells with no history — a protocol
or shard count added since the last recording, or legacy entries
that predate the shards field — pass with a "new, record-only" note
instead of crashing on the missing key; malformed history entries
are warned about and ignored.

    check_replay_bench.py --current out.json \
        [--history results/BENCH_replay.json] [--threshold 0.2]

With --append --rev REV, the current rows are also written to the
history file as new entries tagged with that revision (after the
check; --append implies the check still gates).
"""

import argparse
import json
import sys


def load_current(path):
    with open(path) as f:
        dump = json.load(f)
    if dump.get("bench") != "bench_replay":
        sys.exit(f"{path}: not a bench_replay dump")
    return dump["rows"]


def load_history(path):
    with open(path) as f:
        hist = json.load(f)
    if hist.get("bench") != "bench_replay":
        sys.exit(f"{path}: not a bench_replay history")
    return hist


def cell_key(entry):
    """(protocol, preset, shards) identity of a row or history entry.

    Entries that predate the sharded bench carry no "shards" field;
    they key as shards=0 (the legacy single-engine run), so old and
    new histories interoperate without rewriting.
    """
    return (
        entry.get("protocol"),
        entry.get("preset"),
        entry.get("shards", 0),
    )


def cell_name(key):
    proto, preset, shards = key
    base = f"{proto}/{preset}"
    return f"{base}/x{shards}" if shards else base


def latest_recorded(history):
    """Last recorded rate per (protocol, preset, shards) cell."""
    latest = {}
    for e in history["entries"]:
        key = cell_key(e)
        if key[0] is None or key[1] is None or "accesses_per_sec" not in e:
            print(f"  warning: malformed history entry ignored: {e}")
            continue
        latest[key] = (
            e["accesses_per_sec"],
            e.get("git_rev", "?"),
        )
    return latest


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--current", required=True)
    ap.add_argument("--history", default="results/BENCH_replay.json")
    ap.add_argument("--threshold", type=float, default=0.2)
    ap.add_argument("--append", action="store_true")
    ap.add_argument("--rev", help="git revision tag for --append")
    args = ap.parse_args()
    if args.append and not args.rev:
        ap.error("--append needs --rev")

    rows = load_current(args.current)
    history = load_history(args.history)
    latest = latest_recorded(history)

    failures = []
    for row in rows:
        key = cell_key(row)
        cell = cell_name(key)
        rate = row["accesses_per_sec"]
        if key not in latest:
            print(
                f"  {cell}: {rate:,.0f}/s "
                "(no history: new cell, record-only)"
            )
            continue
        base, rev = latest[key]
        ratio = rate / base
        status = "ok"
        if ratio < 1.0 - args.threshold:
            status = "REGRESSION"
            failures.append(
                f"{cell}: {rate:,.0f}/s vs {base:,.0f}/s "
                f"@ {rev} ({ratio:.2f}x)"
            )
        print(
            f"  {cell}: {rate:,.0f}/s vs {base:,.0f}/s "
            f"@ {rev} ({ratio:.2f}x) {status}"
        )

    if failures:
        print(
            f"\n{len(failures)} cell(s) regressed more than "
            f"{args.threshold:.0%}:",
            file=sys.stderr,
        )
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)

    if args.append:
        for row in rows:
            entry = {
                "protocol": row["protocol"],
                "preset": row["preset"],
                "accesses_per_sec": round(
                    row["accesses_per_sec"], 1
                ),
                "git_rev": args.rev,
            }
            # Legacy rows stay shards-free so old checkers keep
            # reading the history; sharded rows record their lanes.
            if row.get("shards", 0):
                entry["shards"] = row["shards"]
            history["entries"].append(entry)
        with open(args.history, "w") as f:
            json.dump(history, f, indent=2)
            f.write("\n")
        print(f"appended {len(rows)} entries @ {args.rev}")


if __name__ == "__main__":
    main()
