/**
 * amnt_trace — memory-trace toolbox (record / replay / import / info).
 *
 *   amnt_trace record --out=t.trc [--workload=gups] [--protocol=amnt]
 *                     [--instr=N] [--warmup=N] [--stats=stats.json]
 *                     [--shards=N]
 *       Run one single-core simulation of the named workload with
 *       trace recording on, optionally dumping the run's full
 *       StatRegistry JSON.
 *
 *   amnt_trace replay --trace=t.trc [--workload=gups]
 *                     [--protocol=amnt] [--instr=N] [--warmup=N]
 *                     [--stats=stats.json] [--shards=N]
 *       Feed a recorded trace back through the same stack. With the
 *       same workload/protocol/instr/warmup as the recording run,
 *       the stats dump is bit-identical to the live run's (the
 *       invariant CI diffs). --workload matters even though the
 *       trace supplies every reference: programs pre-touch their hot
 *       pages before the ROI, so the named workload's footprint
 *       shapes the initial page-table and allocator state.
 *
 *   amnt_trace import --in=champsim.trace --out=native.trc
 *       Convert an uncompressed ChampSim capture to the native
 *       format.
 *
 *   amnt_trace info --trace=t.trc
 *       Print version and record/read/write/flush/churn counts.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/env.hh"
#include "common/log.hh"
#include "core/protocol_registry.hh"
#include "sim/presets.hh"
#include "sim/system.hh"
#include "sim/traceio/champsim.hh"
#include "sim/traceio/reader.hh"

using namespace amnt;

namespace
{

struct Options
{
    std::string workload = "gups";
    std::string protocol = "amnt";
    std::string trace;
    std::string in;
    std::string out;
    std::string stats;
    std::uint64_t instr = 100'000;
    std::uint64_t warmup = 0;

    /** 0 = legacy engine (unless AMNT_SHARDS); N = sharded lanes. */
    std::uint64_t shards = 0;
};

std::uint64_t
parseU64(const std::string &value, const char *flag)
{
    std::uint64_t v = 0;
    for (char c : value) {
        if (c < '0' || c > '9')
            fatal("%s wants a decimal integer, got '%s'", flag,
                  value.c_str());
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (value.empty())
        fatal("%s wants a decimal integer", flag);
    return v;
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto take = [&](const char *flag,
                              std::string &out) {
            const std::string eq = std::string(flag) + "=";
            if (arg.rfind(eq, 0) != 0)
                return false;
            out = arg.substr(eq.size());
            return true;
        };
        std::string num;
        if (take("--workload", o.workload) ||
            take("--protocol", o.protocol) ||
            take("--trace", o.trace) || take("--in", o.in) ||
            take("--out", o.out) || take("--stats", o.stats))
            continue;
        if (take("--instr", num)) {
            o.instr = parseU64(num, "--instr");
            continue;
        }
        if (take("--warmup", num)) {
            o.warmup = parseU64(num, "--warmup");
            continue;
        }
        if (take("--shards", num)) {
            o.shards = parseU64(num, "--shards");
            continue;
        }
        fatal("unknown option '%s'", arg.c_str());
    }
    return o;
}

void
dumpStats(const sim::System &sys, const std::string &path)
{
    const std::string json = sys.statsJson();
    if (path.empty())
        return;
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        fatal("cannot write stats to '%s'", path.c_str());
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
}

int
runSim(const Options &o, const std::string &record_path,
       const std::string &replay_path)
{
    // --protocol accepts exactly the registered names; an unknown
    // name dies listing core::protocolNameList().
    sim::SystemConfig cfg = sim::SystemConfig::singleProgram(
        core::protocolByName(o.protocol));
    cfg.mee.dataBytes = envU64("AMNT_TRACE_DATA_BYTES", 1ull << 30);
    cfg.traceRecordPath = record_path;
    // Sharded scale-out: the stats dump stays byte-identical at any
    // --shards value (CI diffs a 1-lane against a 4-lane replay).
    cfg.shards = static_cast<unsigned>(o.shards);

    // Replay keeps the named workload's parameters so the pre-ROI
    // hot-page initialization (and with it the page-table and
    // allocator state) matches the recording run exactly.
    sim::WorkloadConfig w = sim::namedWorkload(o.workload);
    if (!replay_path.empty()) {
        w.name = "trace:" + replay_path;
        w.traceFile = replay_path;
    }

    sim::System sys(cfg);
    sys.addProcess(w);
    const sim::RunResult r = sys.run(o.instr, o.warmup);
    dumpStats(sys, o.stats);
    std::fprintf(stderr,
                 "%s: %llu instr, %llu mem reads, %llu mem writes, "
                 "%llu cycles\n",
                 replay_path.empty() ? "record" : "replay",
                 static_cast<unsigned long long>(r.appInstructions),
                 static_cast<unsigned long long>(r.memReads),
                 static_cast<unsigned long long>(r.memWrites),
                 static_cast<unsigned long long>(r.cycles));
    return 0;
}

int
info(const Options &o)
{
    if (o.trace.empty())
        fatal("info needs --trace=PATH");
    sim::traceio::TraceReader reader(o.trace);
    if (!reader.ok())
        fatal("%s", reader.error().c_str());
    std::uint64_t reads = 0, writes = 0, flushes = 0, churns = 0;
    std::uint64_t instructions = 0;
    sim::traceio::TraceRecord rec;
    while (reader.next(rec)) {
        reads += rec.ref.type == AccessType::Read;
        writes += rec.ref.type == AccessType::Write;
        flushes += rec.ref.flush;
        churns += rec.ref.churnPage;
        instructions += rec.gap == 0 ? 1 : rec.gap;
    }
    if (!reader.ok())
        fatal("%s", reader.error().c_str());
    std::printf("trace:        %s\n", o.trace.c_str());
    std::printf("format:       v%u (%s)\n", reader.version(),
                reader.timed() ? "timed" : "untimed");
    std::printf("records:      %llu\n",
                static_cast<unsigned long long>(
                    reader.recordsRead()));
    std::printf("instructions: %llu\n",
                static_cast<unsigned long long>(instructions));
    std::printf("reads:        %llu\n",
                static_cast<unsigned long long>(reads));
    std::printf("writes:       %llu (%llu flushed)\n",
                static_cast<unsigned long long>(writes),
                static_cast<unsigned long long>(flushes));
    std::printf("churn events: %llu\n",
                static_cast<unsigned long long>(churns));
    return 0;
}

int
importTrace(const Options &o)
{
    if (o.in.empty() || o.out.empty())
        fatal("import needs --in=CHAMPSIM --out=NATIVE");
    sim::traceio::ImportStats stats;
    const std::string err =
        sim::traceio::importChampSim(o.in, o.out, &stats);
    if (!err.empty())
        fatal("%s", err.c_str());
    std::printf("imported %llu instructions -> %llu records "
                "(%llu reads, %llu writes) into %s\n",
                static_cast<unsigned long long>(stats.instructions),
                static_cast<unsigned long long>(stats.records),
                static_cast<unsigned long long>(stats.reads),
                static_cast<unsigned long long>(stats.writes),
                o.out.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        fatal("usage: amnt_trace record|replay|import|info "
              "[--flag=value ...]");
    const std::string cmd = argv[1];
    const Options o = parse(argc, argv);
    if (cmd == "record") {
        if (o.out.empty())
            fatal("record needs --out=PATH");
        return runSim(o, o.out, "");
    }
    if (cmd == "replay") {
        if (o.trace.empty())
            fatal("replay needs --trace=PATH");
        return runSim(o, "", o.trace);
    }
    if (cmd == "import")
        return importTrace(o);
    if (cmd == "info")
        return info(o);
    fatal("unknown command '%s' (record|replay|import|info)",
          cmd.c_str());
}
