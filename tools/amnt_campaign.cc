/**
 * amnt_campaign — scenario-campaign driver.
 *
 *   amnt_campaign [--campaign=NAME|all] [--protocol=NAME]
 *                 [--json=PATH] [--seed=N] [--ops=N] [--data-mb=N]
 *                 [--tenants=N] [--crash-after=N] [--threads=N]
 *   amnt_campaign --list
 *
 * With no flags, runs every campaign at the pinned geometry over all
 * nine registry protocols and rewrites results/campaign_<name>.json —
 * the checked-in artifacts (pinned by tests/campaign/, like the
 * golden figures). The reports are seeded-deterministic: the bytes
 * are identical at any --threads / AMNT_SWEEP_THREADS value.
 *
 * --json names a file when a single campaign is selected, otherwise
 * the directory receiving campaign_<name>.json files (default:
 * "results"). --protocol restricts the report to one protocol (a
 * debugging aid; pinned artifacts always carry all rows).
 *
 * Environment: AMNT_CAMPAIGN_{SEED,OPS,DATA_MB,TENANTS,CRASH_AFTER}
 * apply before the flags (flags win). AMNT_SWEEP_THREADS applies when
 * --threads is 0.
 */

#include <sys/stat.h>

#include <cstdio>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "common/log.hh"
#include "core/protocol_registry.hh"

using namespace amnt;

namespace
{

struct Options
{
    std::string campaign = "all";
    std::string protocol;
    std::string json = "results";
    campaign::CampaignConfig cfg =
        campaign::applyEnv(campaign::pinnedConfig());
    bool list = false;
};

std::uint64_t
parseU64(const std::string &value, const char *flag)
{
    std::uint64_t v = 0;
    for (char c : value) {
        if (c < '0' || c > '9')
            fatal("%s wants a decimal integer, got '%s'", flag,
                  value.c_str());
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (value.empty())
        fatal("%s wants a decimal integer", flag);
    return v;
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto take = [&](const char *flag, std::string &out) {
            const std::string eq = std::string(flag) + "=";
            if (arg.rfind(eq, 0) != 0)
                return false;
            out = arg.substr(eq.size());
            return true;
        };
        std::string num;
        if (arg == "--list") {
            o.list = true;
            continue;
        }
        if (take("--campaign", o.campaign) ||
            take("--protocol", o.protocol) || take("--json", o.json))
            continue;
        if (take("--seed", num)) {
            o.cfg.seed = parseU64(num, "--seed");
            continue;
        }
        if (take("--ops", num)) {
            o.cfg.ops =
                static_cast<unsigned>(parseU64(num, "--ops"));
            continue;
        }
        if (take("--data-mb", num)) {
            o.cfg.dataBytes = parseU64(num, "--data-mb") << 20;
            continue;
        }
        if (take("--tenants", num)) {
            o.cfg.tenants =
                static_cast<unsigned>(parseU64(num, "--tenants"));
            continue;
        }
        if (take("--crash-after", num)) {
            o.cfg.crashAfter = static_cast<unsigned>(
                parseU64(num, "--crash-after"));
            continue;
        }
        if (take("--threads", num)) {
            o.cfg.threads =
                static_cast<unsigned>(parseU64(num, "--threads"));
            continue;
        }
        fatal("unknown option '%s'", arg.c_str());
    }
    if (!o.protocol.empty())
        o.cfg.only = core::protocolByName(o.protocol);
    return o;
}

void
writeReport(const campaign::CampaignReport &report,
            const std::string &path)
{
    const std::size_t slash = path.rfind('/');
    if (slash != std::string::npos && slash > 0)
        ::mkdir(path.substr(0, slash).c_str(), 0755);
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        fatal("cannot write campaign report to '%s'", path.c_str());
    const std::string json = report.toJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s (%zu rows)\n", path.c_str(),
                report.rows.size());
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parse(argc, argv);
    if (o.list) {
        for (const std::string &n : campaign::campaignNames())
            std::printf("%s\n", n.c_str());
        return 0;
    }
    const std::vector<std::string> names =
        o.campaign == "all"
            ? campaign::campaignNames()
            : std::vector<std::string>{o.campaign};
    const bool single = names.size() == 1;
    for (const std::string &name : names) {
        const campaign::CampaignReport report =
            campaign::runCampaign(name, o.cfg);
        // Single campaign: --json is the file. Multiple: a directory.
        const std::string path =
            single && o.json.find(".json") != std::string::npos
                ? o.json
                : o.json + "/campaign_" + name + ".json";
        writeReport(report, path);
    }
    return 0;
}
